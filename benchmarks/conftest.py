"""Shared helpers for the benchmark harness.

Every experiment benchmark runs the experiment's quick configuration exactly
once through pytest-benchmark's pedantic mode (the experiments are themselves
Monte-Carlo aggregates; repeating them inside the timer would only multiply
runtime without adding information) and attaches the headline measurements as
benchmark extra_info so `pytest benchmarks/ --benchmark-only` doubles as a
results printer.

The ``workers`` knob of :class:`repro.sim.runner.TrialRunner` threads through
here: pass ``workers=k`` from a benchmark, or set the ``REPRO_BENCH_WORKERS``
environment variable to parallelise every experiment benchmark's Monte-Carlo
trials.  Results are seed-deterministic, so the knob only changes timing.
"""

from __future__ import annotations

import os

import pytest


def _default_workers() -> int:
    """Worker count from $REPRO_BENCH_WORKERS (default 1 = sequential)."""
    try:
        return max(1, int(os.environ.get("REPRO_BENCH_WORKERS", "1")))
    except ValueError:
        return 1


def run_experiment_benchmark(benchmark, module, workers=None, **run_kwargs):
    """Run ``module.run(module.quick_config(workers=...))`` once under the benchmark timer."""
    workers = _default_workers() if workers is None else workers
    result_holder = {}

    def target():
        result_holder["result"] = module.run(module.quick_config(workers=workers), **run_kwargs)
        return result_holder["result"]

    result = benchmark.pedantic(target, rounds=1, iterations=1)
    benchmark.extra_info["experiment"] = module.EXPERIMENT_ID
    benchmark.extra_info["title"] = module.TITLE
    benchmark.extra_info["workers"] = workers
    for finding in result.findings[:2]:
        benchmark.extra_info.setdefault("findings", []).append(finding)
    # Surface the first table in the captured output for convenience.
    print()
    for table in result.tables:
        print(table.to_text())
        print()
    return result
