"""Thin CLI wrapper: compare a fresh bench summary to the committed baseline.

CI runs this after the benchmark-smoke step::

    PYTHONPATH=src python benchmarks/compare_baseline.py \
        --baseline BENCH_pr5.json \
        --current bench-artifacts/BENCH_current.json

Exits nonzero when any sufficiently-long benchmark slowed down beyond the
threshold (default 1.25x; override with --max-slowdown or
$REPRO_BENCH_MAX_SLOWDOWN).  See :mod:`repro.util.benchcompare`.
"""

from __future__ import annotations

from repro.util.benchcompare import main

if __name__ == "__main__":
    raise SystemExit(main())
