#!/usr/bin/env python
"""Quickstart: store and retrieve a data item in a churning P2P network.

This is the smallest end-to-end use of the library's public API:

1. build a :class:`repro.P2PStorageSystem` (a synchronous dynamic expander
   network with an oblivious churn adversary plus the paper's protocols);
2. warm up the random-walk soup so nodes have near-uniform samples;
3. store an item (Algorithm 3: committee + landmarks);
4. let churn run for a while (committees re-form, landmarks rebuild);
5. retrieve the item from an unrelated node (Algorithm 4) and verify it.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import P2PStorageSystem, paper_churn_limit


def main() -> None:
    n = 512
    churn_per_round = max(2, paper_churn_limit(n, delta=0.5) // 20)  # 5% of the paper's limit
    print(f"network size n={n}, churn {churn_per_round} nodes replaced per round")

    system = P2PStorageSystem(n=n, churn_rate=churn_per_round, seed=42)
    print(f"derived parameters: {system.params.summary()}")

    print("\nwarming up the walk soup ...")
    system.warm_up()

    payload = b"Storage and Search in Dynamic Peer-to-Peer Networks (SPAA 2013)"
    item = system.store(payload)
    print(
        f"stored item {item.item_id}: {system.storage.replica_count(item.item_id)} replicas, "
        f"{system.storage.landmark_count(item.item_id)} storage landmarks"
    )

    horizon = 3 * system.params.committee_refresh_period
    print(f"\nrunning {horizon} rounds of churn (committee refreshes + landmark rebuilds) ...")
    system.run_rounds(horizon)
    print(
        f"after {system.network.total_churned} total node replacements the item is "
        f"{'still available' if system.storage.is_available(item.item_id) else 'LOST'} with "
        f"{system.storage.replica_count(item.item_id)} replicas"
    )

    print("\nissuing a retrieval from a random node ...")
    op = system.retrieve(item.item_id)
    system.run_until_finished(op)
    print(f"retrieval {'succeeded' if op.succeeded else 'failed'} in {op.latency} rounds "
          f"after {op.probes_sent} probes; holders: {op.holder_ids}")
    recovered = system.storage.read(item.item_id)
    print(f"payload intact: {recovered == payload}")

    bw = system.bandwidth_summary()
    print(
        f"\nbandwidth: mean {bw['mean_bits_per_node_round']:.0f} protocol bits/node/round "
        f"(+ ~{bw['walk_bits_per_node_round_estimate']:.0f} walk-token bits), "
        f"polylog cap {bw['cap_bits']:.0f} bits, violations: {int(bw['violation_count'])}"
    )


if __name__ == "__main__":
    main()
