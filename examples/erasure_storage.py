#!/usr/bin/env python
"""Erasure-coded storage (Section 4.4): same availability, a fraction of the bytes.

Stores the same payloads once with plain replication (Theta(log n) full
copies) and once with Rabin IDA pieces (one piece per committee member, any
K reconstruct), runs both systems against the same churn rate, and compares
bytes stored, availability, and the reconstruct-and-redisperse handovers.

Both storage modes run as one two-cell sweep through
:class:`repro.sim.runner.Sweep`; pass ``--workers 2`` to run them on separate
processes (the results are seed-deterministic either way).  ``--json-out``
persists each cell through :class:`repro.sim.store.ResultStore` and resumes
on re-invocation::

    python examples/erasure_storage.py --workers 2 --json-out /tmp/erasure-demo
"""

from __future__ import annotations

import argparse
from pathlib import Path
from typing import Dict

import numpy as np

from repro import InformationDispersal
from repro.analysis.tables import ResultTable
from repro.core.params import ProtocolParameters
from repro.sim.experiment import ExperimentConfig, build_system
from repro.sim.runner import GridSpec, Sweep, TrialRunner
from repro.sim.store import ResultStore

ITEM_SIZE = 4096


def erasure_trial(config: ExperimentConfig, seed: int) -> Dict[str, float]:
    """Store items, churn for the horizon, retrieve; return plain metrics."""
    system = build_system(config, seed)
    system.warm_up(config.warmup_rounds)
    rng = np.random.default_rng(seed + 50_000)
    payloads = [
        rng.integers(0, 256, size=config.item_size, dtype=np.uint8).tobytes() for _ in range(config.items)
    ]
    items = [system.store(p) for p in payloads]
    system.run_rounds(config.measure_rounds)
    ops = [system.retrieve(i.item_id) for i in items if system.storage.is_available(i.item_id)]
    system.run_until_finished(ops)
    return {
        "stored_bytes": float(np.mean([system.storage.stored_bytes(i.item_id) for i in items])),
        "availability": float(np.mean([system.storage.is_available(i.item_id) for i in items])),
        "intact": float(np.mean([system.storage.read(i.item_id) == p for i, p in zip(items, payloads)])),
        "handovers": float(np.mean([system.storage.items[i.item_id].handover_count for i in items])),
        "retrieved": float(np.mean([op.succeeded for op in ops])) if ops else 0.0,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workers", type=int, default=1, help="worker processes for the sweep (default 1)")
    parser.add_argument(
        "--json-out",
        default=None,
        metavar="DIR",
        help="persist per-cell results under DIR; re-running with the same DIR resumes the sweep",
    )
    args = parser.parse_args()

    # Show the raw coder first.
    rng = np.random.default_rng(99)
    demo_payload = rng.integers(0, 256, size=ITEM_SIZE, dtype=np.uint8).tobytes()
    ida = InformationDispersal(total_pieces=10, required_pieces=7)
    pieces = ida.encode(demo_payload)
    print(
        f"raw IDA demo: {len(demo_payload)} bytes -> {len(pieces)} pieces of {pieces[0].size_bytes} bytes "
        f"(blow-up {ida.blowup:.2f}x); any 7 pieces reconstruct: "
        f"{ida.decode(pieces[3:10]) == demo_payload}"
    )

    n = 512
    params = ProtocolParameters.for_network(n)
    base = ExperimentConfig(
        name="erasure-demo",
        n=n,
        churn_rate=5,
        seeds=(7,),
        measure_rounds=4 * params.committee_refresh_period,
        items=4,
        item_size=ITEM_SIZE,
        workers=args.workers,
    )
    store = None
    if args.json_out is not None:
        run_dir = Path(args.json_out)
        if (run_dir / ResultStore.MANIFEST_NAME).exists():
            store = ResultStore.open(run_dir)
            print(f"resuming from {run_dir} ({len(store.completed_keys())} cells already done)")
        else:
            store = ResultStore.create(run_dir, {"example": "erasure_storage", "n": n})
    grid = GridSpec.product({"storage_mode": ("replicate", "erasure")})
    result = Sweep(base, grid, erasure_trial).run(TrialRunner(workers=args.workers), store=store)

    table = ResultTable(
        title=f"replication vs erasure-coded storage (n={n}, churn 5/round, 4 KiB items)",
        columns=["mode", "stored_bytes_per_item", "overhead_x", "availability", "intact", "retrieved", "handovers"],
    )
    for cell_result in result:
        mode = cell_result.cell.override_dict()["storage_mode"]
        outcome = cell_result.trials[0].payload
        table.add_row(
            mode=mode,
            stored_bytes_per_item=outcome["stored_bytes"],
            overhead_x=outcome["stored_bytes"] / ITEM_SIZE,
            availability=outcome["availability"],
            intact=outcome["intact"],
            retrieved=outcome["retrieved"],
            handovers=outcome["handovers"],
        )
        print(
            f"{mode:9s}: L={params.erasure_total_pieces} K={params.erasure_required_pieces} "
            f"stored {outcome['stored_bytes']:.0f} B/item, availability {outcome['availability']:.2f}"
        )
    print()
    print(table.to_text())


if __name__ == "__main__":
    main()
