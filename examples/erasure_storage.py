#!/usr/bin/env python
"""Erasure-coded storage (Section 4.4): same availability, a fraction of the bytes.

Stores the same payloads once with plain replication (Theta(log n) full
copies) and once with Rabin IDA pieces (one piece per committee member, any
K reconstruct), runs both systems against the same churn rate, and compares
bytes stored, availability, and the reconstruct-and-redisperse handovers.

Run with::

    python examples/erasure_storage.py
"""

from __future__ import annotations

import numpy as np

from repro import InformationDispersal, P2PStorageSystem
from repro.analysis.tables import ResultTable


def run_mode(mode: str, payloads: list[bytes], seed: int) -> dict:
    system = P2PStorageSystem(n=512, churn_rate=5, seed=seed, storage_mode=mode)
    system.warm_up()
    items = [system.store(p) for p in payloads]
    system.run_rounds(4 * system.params.committee_refresh_period)
    ops = [system.retrieve(i.item_id) for i in items if system.storage.is_available(i.item_id)]
    system.run_until_finished(ops)
    return {
        "system": system,
        "items": items,
        "stored_bytes": float(np.mean([system.storage.stored_bytes(i.item_id) for i in items])),
        "availability": float(np.mean([system.storage.is_available(i.item_id) for i in items])),
        "intact": float(
            np.mean([system.storage.read(i.item_id) == p for i, p in zip(items, payloads)])
        ),
        "handovers": float(np.mean([system.storage.items[i.item_id].handover_count for i in items])),
        "retrieved": float(np.mean([op.succeeded for op in ops])) if ops else 0.0,
    }


def main() -> None:
    rng = np.random.default_rng(99)
    payloads = [rng.integers(0, 256, size=4096, dtype=np.uint8).tobytes() for _ in range(4)]

    # Show the raw coder first.
    ida = InformationDispersal(total_pieces=10, required_pieces=7)
    pieces = ida.encode(payloads[0])
    print(
        f"raw IDA demo: {len(payloads[0])} bytes -> {len(pieces)} pieces of {pieces[0].size_bytes} bytes "
        f"(blow-up {ida.blowup:.2f}x); any 7 pieces reconstruct: "
        f"{ida.decode(pieces[3:10]) == payloads[0]}"
    )

    table = ResultTable(
        title="replication vs erasure-coded storage (n=512, churn 5/round, 4 KiB items)",
        columns=["mode", "stored_bytes_per_item", "overhead_x", "availability", "intact", "retrieved", "handovers"],
    )
    for mode in ("replicate", "erasure"):
        outcome = run_mode(mode, payloads, seed=7)
        table.add_row(
            mode=mode,
            stored_bytes_per_item=outcome["stored_bytes"],
            overhead_x=outcome["stored_bytes"] / 4096,
            availability=outcome["availability"],
            intact=outcome["intact"],
            retrieved=outcome["retrieved"],
            handovers=outcome["handovers"],
        )
        params = outcome["system"].params
        print(
            f"{mode:9s}: L={params.erasure_total_pieces} K={params.erasure_required_pieces} "
            f"stored {outcome['stored_bytes']:.0f} B/item, availability {outcome['availability']:.2f}"
        )
    print()
    print(table.to_text())


if __name__ == "__main__":
    main()
