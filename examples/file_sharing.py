#!/usr/bin/env python
"""A file-sharing workload: many publishers, many readers, continuous churn.

This is the scenario the paper's introduction motivates (CrashPlan / Symform
style P2P storage): peers continuously publish small files, other peers look
them up later, while ~the whole population turns over on the timescale of
hours.  The script publishes a batch of files, runs a long churn horizon,
issues a burst of retrievals from random (often freshly joined) peers, and
prints per-file and aggregate statistics.

Run with::

    python examples/file_sharing.py
"""

from __future__ import annotations

import numpy as np

from repro import P2PStorageSystem
from repro.analysis.tables import ResultTable


def main() -> None:
    n = 512
    files = 8
    churn_per_round = 6
    system = P2PStorageSystem(n=n, churn_rate=churn_per_round, seed=2013)
    rng = np.random.default_rng(7)

    print(f"n={n}, churn={churn_per_round}/round, publishing {files} files")
    system.warm_up()

    published = {}
    for i in range(files):
        payload = rng.integers(0, 256, size=512, dtype=np.uint8).tobytes()
        item = system.store(payload)
        published[item.item_id] = payload
        system.run_rounds(2)  # stagger the publications

    horizon = 4 * system.params.committee_refresh_period
    print(f"running {horizon} rounds of churn ...")
    system.run_rounds(horizon)
    turned_over = system.network.total_churned / n
    print(f"cumulative churn so far: {turned_over:.1f}x the network size")

    print("issuing retrievals from random peers (including freshly joined ones) ...")
    operations = {item_id: system.retrieve(item_id) for item_id in published}
    system.run_until_finished(list(operations.values()))

    table = ResultTable(
        title="file-sharing results",
        columns=["file", "available", "replicas", "landmarks", "retrieved", "latency_rounds", "intact"],
    )
    for item_id, payload in published.items():
        op = operations[item_id]
        table.add_row(
            file=item_id,
            available=system.storage.is_available(item_id),
            replicas=system.storage.replica_count(item_id),
            landmarks=system.storage.landmark_count(item_id),
            retrieved=op.succeeded,
            latency_rounds=op.latency,
            intact=system.storage.read(item_id) == payload,
        )
    print()
    print(table.to_text())

    successes = sum(1 for op in operations.values() if op.succeeded)
    print(
        f"\n{successes}/{files} files retrieved successfully; availability "
        f"{system.availability():.2f}; mean replicas per file "
        f"{np.mean([system.storage.replica_count(i) for i in published]):.1f} "
        f"(target Theta(log n) = {system.params.committee_size})"
    )


if __name__ == "__main__":
    main()
