#!/usr/bin/env python
"""Churn stress test: sweep the churn rate and watch the protocol degrade.

Reproduces the shape of experiment E7 interactively: the same workload (store
a few items, wait, retrieve them) is run at increasing churn rates -- from
mild, through the paper's O(n/log^{1+delta} n) regime, up to a constant
fraction of n per round where the Section-5 conjecture predicts collapse --
and against both the uniform oblivious adversary and the sequential-sweep
adversary that replaces the entire population over time.

Run with::

    python examples/churn_stress.py
"""

from __future__ import annotations

import math

import numpy as np

from repro import P2PStorageSystem, SequentialSweepChurn, UniformRandomChurn
from repro.analysis.tables import ResultTable
from repro.util.rng import SplitRng


def run_scenario(n: int, churn_rate: int, adversary_kind: str, seed: int) -> dict:
    split = SplitRng(seed)
    if adversary_kind == "sweep":
        adversary = SequentialSweepChurn(n, churn_rate, split.adversary.generator)
    else:
        adversary = UniformRandomChurn(n, churn_rate, split.adversary.generator) if churn_rate else None
    system = (
        P2PStorageSystem(n=n, adversary=adversary, seed=seed)
        if adversary is not None
        else P2PStorageSystem(n=n, churn_rate=0, seed=seed)
    )
    system.warm_up()
    items = [system.store(bytes([i]) * 64) for i in range(3)]
    system.run_rounds(3 * system.params.committee_refresh_period)
    ops = [system.retrieve(item.item_id) for item in items if system.storage.is_available(item.item_id)]
    system.run_until_finished(ops)
    return {
        "availability": float(np.mean([system.storage.is_available(i.item_id) for i in items])),
        "retrieved": float(np.mean([op.succeeded for op in ops])) if ops else 0.0,
        "walk_survival": system.soup.stats.survival_rate,
    }


def main() -> None:
    n = 512
    log_n = math.log(n)
    paper_rate = n / log_n ** 1.5
    rates = [0, int(paper_rate * 0.05), int(paper_rate * 0.25), int(paper_rate), int(n / log_n)]
    table = ResultTable(
        title=f"churn stress sweep (n={n}, paper regime ~{int(paper_rate)} per round, n/ln n = {int(n/log_n)})",
        columns=["churn_per_round", "adversary", "availability", "retrieved", "walk_survival"],
    )
    for rate in rates:
        for kind in ("uniform", "sweep"):
            if rate == 0 and kind == "sweep":
                continue
            outcome = run_scenario(n, rate, kind, seed=100 + rate)
            table.add_row(
                churn_per_round=rate,
                adversary=kind if rate else "none",
                availability=outcome["availability"],
                retrieved=outcome["retrieved"],
                walk_survival=outcome["walk_survival"],
            )
            print(f"rate={rate:4d} adversary={kind:8s} -> {outcome}")
    print()
    print(table.to_text())
    print(
        "\nreading: availability and retrieval stay near 1 well past the paper's churn regime and collapse as "
        "the rate approaches a constant fraction of n per round -- the knee the Section-5 conjecture predicts."
    )


if __name__ == "__main__":
    main()
