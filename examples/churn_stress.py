#!/usr/bin/env python
"""Churn stress test: sweep the churn rate and watch the protocol degrade.

Reproduces the shape of experiment E7 interactively: the same workload (store
a few items, wait, retrieve them) is run at increasing churn rates -- from
mild, through the paper's O(n/log^{1+delta} n) regime, up to a constant
fraction of n per round where the Section-5 conjecture predicts collapse --
and against both the uniform oblivious adversary and the sequential-sweep
adversary that replaces the entire population over time.

The whole scenario grid fans into one process pool via
:class:`repro.sim.runner.Sweep`; results are seed-deterministic, so
``--workers`` only changes wall-clock time.  With ``--json-out`` every
completed cell is persisted through :class:`repro.sim.store.ResultStore`, so
a killed run picks up where it stopped when re-invoked with the same
directory::

    python examples/churn_stress.py --workers 4 --json-out /tmp/churn-stress
    # ^C mid-run, then re-run the same command: completed cells load from disk
"""

from __future__ import annotations

import argparse
import math
from pathlib import Path
from typing import Dict

import numpy as np

from repro.analysis.tables import ResultTable
from repro.core.params import ProtocolParameters
from repro.experiments.common import run_storage_trial
from repro.sim.experiment import ExperimentConfig
from repro.sim.runner import GridSpec, Sweep, TrialRunner
from repro.sim.store import ResultStore


def stress_trial(config: ExperimentConfig, seed: int) -> Dict[str, float]:
    """Store a few items, run the horizon, retrieve -- return plain metrics."""
    payload = run_storage_trial(config, seed, retrievals_per_item=1)
    system = payload["system"]
    operations = payload["operations"]
    item_ids = payload["item_ids"]
    return {
        "availability": float(np.mean([system.storage.is_available(i) for i in item_ids])),
        "retrieved": float(np.mean([op.succeeded for op in operations])) if operations else 0.0,
        "walk_survival": system.soup.stats.survival_rate,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workers", type=int, default=1, help="worker processes for the sweep (default 1)")
    parser.add_argument(
        "--json-out",
        default=None,
        metavar="DIR",
        help="persist per-cell results under DIR; re-running with the same DIR resumes the sweep",
    )
    args = parser.parse_args()

    n = 512
    log_n = math.log(n)
    paper_rate = n / log_n**1.5
    rates = [0, int(paper_rate * 0.05), int(paper_rate * 0.25), int(paper_rate), int(n / log_n)]
    params = ProtocolParameters.for_network(n)
    base = ExperimentConfig(
        name="churn-stress",
        n=n,
        seeds=(100,),
        measure_rounds=3 * params.committee_refresh_period,
        items=3,
        item_size=64,
        workers=args.workers,
    )
    cells = [
        {"churn_rate": rate, "adversary": kind if rate else "none"}
        for rate in rates
        for kind in ("uniform", "sweep")
        if rate or kind == "uniform"
    ]
    store = None
    if args.json_out is not None:
        run_dir = Path(args.json_out)
        if (run_dir / ResultStore.MANIFEST_NAME).exists():
            store = ResultStore.open(run_dir)
            print(f"resuming from {run_dir} ({len(store.completed_keys())} cells already done)")
        else:
            store = ResultStore.create(run_dir, {"example": "churn_stress", "n": n})
    sweep = Sweep(base, GridSpec.from_cells(cells), stress_trial)
    result = sweep.run(TrialRunner(workers=args.workers, progress=True), store=store)

    table = ResultTable(
        title=f"churn stress sweep (n={n}, paper regime ~{int(paper_rate)} per round, n/ln n = {int(n/log_n)})",
        columns=["churn_per_round", "adversary", "availability", "retrieved", "walk_survival"],
    )
    for cell_result in result:
        overrides = cell_result.cell.override_dict()
        outcome = cell_result.trials[0].payload
        print(f"rate={overrides['churn_rate']:4d} adversary={overrides['adversary']:8s} -> {outcome}")
        table.add_row(
            churn_per_round=overrides["churn_rate"],
            adversary=overrides["adversary"],
            availability=outcome["availability"],
            retrieved=outcome["retrieved"],
            walk_survival=outcome["walk_survival"],
        )
    print()
    print(table.to_text())
    print(
        f"\n{result.total_trials} scenarios in {result.elapsed_seconds:.1f}s wall-clock on "
        f"{args.workers} worker(s).\n"
        "reading: availability and retrieval stay near 1 well past the paper's churn regime and collapse as "
        "the rate approaches a constant fraction of n per round -- the knee the Section-5 conjecture predicts."
    )


if __name__ == "__main__":
    main()
