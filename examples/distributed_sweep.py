#!/usr/bin/env python
"""Distributed sweep demo: N local workers drain one shared run directory.

This is the smallest end-to-end tour of ``repro.sim.dispatch``:

1. a run directory is *dispatched* (manifest written, nothing computed);
2. two (or ``--workers-n``) separate ``repro-experiment worker`` processes
   attach to it, claim sweep cells / seed-chunks with atomic claim files,
   and compute them with their own local pools;
3. the parent polls ``status``-style progress lines while they work;
4. when every cell artifact exists, each worker assembles and writes the
   same ``result.json`` a single-process ``repro-experiment run`` would
   have produced (set ``REPRO_CANONICAL_TIMING=1`` -- as this script does --
   and the file is byte-identical, which is also what CI's dispatch-smoke
   job asserts).

The same protocol works across *hosts*: point every worker at one shared
(e.g. NFS-mounted) directory.  Kill a worker mid-run to watch its lease
expire and the survivors reclaim its cell::

    python examples/distributed_sweep.py --workers-n 3 --lease 5

``--backend sqlite`` swaps the claim files for one WAL-mode database in the
run directory (single-host fleets); the workers pick the backend up from
the manifest and the resulting artifacts are byte-identical either way.
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys
import time
from pathlib import Path

from repro.sim.store import ResultStore


def spawn_worker(run_dir: Path, index: int, lease: float, log_dir: Path) -> subprocess.Popen:
    """Start one `repro-experiment worker` process against the shared run dir."""
    log_path = log_dir / f"worker-{index}.log"
    env = dict(os.environ, REPRO_CANONICAL_TIMING="1")
    env.setdefault("PYTHONPATH", str(Path(__file__).resolve().parents[1] / "src"))
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.experiments.registry",
            "worker",
            str(run_dir),
            "--lease",
            str(lease),
            "--chunk-seeds",
            "4",
            "--min-task-trials",
            "4",
            "--wait-timeout",
            "600",
        ],
        env=env,
        stdout=open(log_path, "w"),
        stderr=subprocess.STDOUT,
    )
    print(f"started worker #{index} (pid {process.pid}, log {log_path})")
    return process


def live_status(store: ResultStore, workers: list) -> None:
    """Poll the run directory and print one status line per second."""
    while any(process.poll() is None for process in workers):
        cells = len(store.completed_keys())
        chunks = len(list(store.chunks_dir.glob("*.json"))) if store.chunks_dir.exists() else 0
        claims = store.active_claims()
        expired = sum(1 for claim in claims if store.claim_expired(claim))
        busy = ", ".join(
            f"{claim.get('worker', '?').rsplit('-', 2)[-2]}:{claim.get('task', '?')[:10]}"
            for claim in claims
        )
        print(
            f"  [{time.strftime('%H:%M:%S')}] cells={cells} chunks={chunks} "
            f"claims={len(claims)} (expired={expired}) {busy}"
        )
        time.sleep(1.0)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workers-n", type=int, default=2, help="number of worker processes (default 2)")
    parser.add_argument("--lease", type=float, default=10.0, help="claim lease seconds (default 10)")
    parser.add_argument(
        "--out",
        default="/tmp/repro-distributed-sweep",
        metavar="DIR",
        help="where the shared run directory is created",
    )
    parser.add_argument(
        "--backend",
        default="filesystem",
        choices=("filesystem", "sqlite"),
        help="claim backend recorded in the manifest: claim files (works across hosts) "
        "or one WAL-mode SQLite database (single host; workers inherit it automatically)",
    )
    args = parser.parse_args()

    os.environ["REPRO_CANONICAL_TIMING"] = "1"
    from repro.experiments import registry  # import after env setup

    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    print("dispatching a quick E7 churn sweep (no computation happens yet)...")
    rc = registry.main(
        [
            "dispatch",
            "E7",
            "--json-out",
            str(out),
            "--backend",
            args.backend,
            "--set",
            "n=128",
            "--set",
            "items=2",
            "--set",
            "measure_rounds=20",
            "--seeds",
            "0..7",
        ]
    )
    if rc != 0:
        sys.exit(rc)
    run_dir = sorted(out.glob("E7-*"))[-1]
    store = ResultStore.open(run_dir)

    workers = [spawn_worker(run_dir, i, args.lease, run_dir) for i in range(args.workers_n)]
    live_status(store, workers)
    for process in workers:
        process.wait()
        if process.returncode != 0:
            print(f"worker pid {process.pid} exited with {process.returncode}; see its log")
            sys.exit(process.returncode)

    result = store.load_result()
    print()
    print(result.to_text())
    print(
        f"\n{args.workers_n} workers cooperatively completed {len(store.completed_keys())} cells "
        f"in {run_dir}.\nRe-run `repro-experiment run E7 --json-out ...` with the same overrides and "
        "REPRO_CANONICAL_TIMING=1 to verify result.json is byte-identical to a single-process run."
    )


if __name__ == "__main__":
    main()
